# Local targets mirror the CI pipeline (.github/workflows/ci.yml) step for
# step, so `make ci` reproduces exactly what a pull request is checked
# against.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench
