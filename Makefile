# Local targets mirror the CI pipeline (.github/workflows/ci.yml) step for
# step, so `make ci` reproduces exactly what a pull request is checked
# against.

GO ?= go

# Coverage ratchet: `make cover` fails if total statement coverage drops
# below this. Raise it when coverage grows; never lower it.
COVER_MIN ?= 84.0

.PHONY: build test race bench perf fmt vet lint fuzz cover smoke ci

# Repo-specific static analysis (cmd/mglint): machine-checks the
# determinism and concurrency invariants — seeded randomness, no wall clock
# in simulation code, no order-sensitive metric-map iteration, no mixed
# atomic/plain field access, no float equality. Runs standalone here; the
# same binary also works as `go vet -vettool=`.
lint:
	$(GO) run ./cmd/mglint ./...

# Performance-trajectory harness: measures evaluation throughput, the
# chip-trace aggregation and grid-solve costs and the memo counters, and
# writes the
# BENCH_<n>.json report (schema in ROADMAP.md). Pass PERF_ARGS for knobs,
# e.g. `make perf PERF_ARGS="-out BENCH_6.json -baseline bench_base.json"`.
PERF_ARGS ?=
perf:
	$(GO) run ./cmd/mgperf $(PERF_ARGS)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# Short fuzz smoke runs of every fuzz target (one -fuzz per invocation; the
# powersim package has several targets, so their patterns are anchored).
fuzz:
	$(GO) test -fuzz=FuzzEmit -fuzztime=10s -run='^$$' ./internal/program
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -run='^$$' ./internal/config
	$(GO) test -fuzz='^FuzzSumTraces$$' -fuzztime=10s -run='^$$' ./internal/powersim
	$(GO) test -fuzz='^FuzzSumTracesOneClockOracle$$' -fuzztime=10s -run='^$$' ./internal/powersim
	$(GO) test -fuzz='^FuzzGridLumpedOracle$$' -fuzztime=10s -run='^$$' ./internal/powersim

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (minimum $(COVER_MIN)%)"; \
	ok="$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { print (t+0 >= m+0) ? 1 : 0 }')"; \
	if [ "$$ok" != "1" ]; then \
		echo "coverage $$total% fell below the $(COVER_MIN)% ratchet"; \
		exit 1; \
	fi

smoke:
	./scripts/smoke.sh

ci: fmt vet lint build race bench fuzz cover smoke
