// Command mgbench reproduces the paper's evaluation section: every table and
// figure has an experiment that can be run individually or as a full suite.
//
//	mgbench -experiment all            # full reproduction (minutes)
//	mgbench -experiment fig5 -quick    # one figure at reduced budget
//	mgbench -experiment fig2 -csv out/ # also dump CSV data for plotting
//
// Experiments: tableI, tableII, fig2, fig3, fig4, fig5, fig6, tableIII,
// stresscmp, corun, dvfs, spatial, summary, all — plus tunercmp, which is not
// part of "all" (it re-runs the spatial stress problem once per tuner).
//
// Alternatively -kind runs a single stress test of any built-in kind
// (perf-virus, power-virus, voltage-noise-virus, thermal-virus,
// corun-noise-virus, dvfs-noise-virus, spatial-noise-virus,
// hotspot-migration-virus — the last two also answer to "spatial" and
// "hotspot") on the core selected with -core, and -trace dumps the tuned
// kernel's windowed power trace as CSV
// (window,cycles,time_ns,duration_ns,energy_pj,power_w; chip-level traces
// live on a nanosecond grid, so their rows carry duration_ns with cycles 0). The corun
// kind and experiment co-run -cores copies of the core on a shared
// power-delivery network and tune the chip-level droop; the dvfs kind and
// experiment additionally tune per-core clocks, warm-started from -freqs,
// and compare against the homogeneous fixed-clock baseline. The spatial
// kinds and experiment evaluate the chip on a -grid RxC spatial PDN/thermal
// grid with cores placed by -floorplan ("row,col" per core; default
// round-robin), emit per-node droop/temperature metrics, and the spatial
// experiment compares against the spatially-oblivious co-run virus
// re-scored on the same grid:
//
// Stress tuning is budget-centric: -tuner picks the search mechanism (gd,
// ga, annealing, random, bruteforce, cmaes, halving-gd, halving-cmaes),
// -budget caps the proposed evaluations per tuning run, and -power-cap
// constrains the search to kernels under a dynamic power cap (capped runs
// also report the objective/power Pareto front). The tunercmp experiment
// pits a comma-separated -tuner challenger list against the gradient-descent
// baseline at an equal budget on the spatial-grid chip problem:
//
//	mgbench -kind voltage-noise-virus -quick -core small -trace trace.csv
//	mgbench -kind corun-noise-virus -quick -core small -cores 2
//	mgbench -experiment dvfs -quick -core small -freqs 2.0,1.2
//	mgbench -kind spatial -quick -core small -cores 4 -grid 2x2
//	mgbench -experiment spatial -quick -core small -cores 4 -grid 2x2 -floorplan "0,0;0,0;1,1;1,1"
//	mgbench -kind power-virus -quick -core small -tuner cmaes -budget 200 -power-cap 30
//	mgbench -experiment tunercmp -quick -core small -cores 4 -grid 2x2 -tuner cmaes,halving-cmaes
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"micrograd/internal/experiments"
	"micrograd/internal/metrics"
	"micrograd/internal/multicore"
	"micrograd/internal/powersim"
	"micrograd/internal/report"
	"micrograd/internal/stress"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mgbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mgbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment to run: tableI, tableII, fig2, fig3, fig4, fig5, fig6, tableIII, stresscmp, corun, dvfs, spatial, tunercmp, summary, all")
		quick      = fs.Bool("quick", false, "use the reduced quick budget (3 benchmarks, short simulations)")
		csvDir     = fs.String("csv", "", "directory to write CSV data files into (empty = don't write)")
		dynInstr   = fs.Int("instructions", 0, "override dynamic instructions per evaluation")
		epochs     = fs.Int("epochs", 0, "override cloning epochs")
		seed       = fs.Int64("seed", 0, "override random seed")
		benchList  = fs.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count of the parallel evaluation engine (1 = serial; results are identical at any count)")
		kind       = fs.String("kind", "", "run a single stress test of this kind instead of an experiment: perf-virus, power-virus, voltage-noise-virus, thermal-virus, corun-noise-virus, dvfs-noise-virus, spatial-noise-virus (alias: spatial), hotspot-migration-virus (alias: hotspot)")
		coreName   = fs.String("core", "large", "core the -kind stress test and the corun/dvfs/spatial experiments run on: small or large")
		cores      = fs.Int("cores", 2, "number of co-running cores of the corun/dvfs/spatial experiments and kinds")
		freqList   = fs.String("freqs", "", "comma-separated per-core warm-start clocks in GHz for the dvfs experiment and the dvfs-noise-virus kind (e.g. 2.0,1.2; sets the core count, empty = start from the knob-space midpoint)")
		gridDims   = fs.String("grid", "", "spatial PDN/thermal grid dimensions RxC for the spatial experiment and kinds (e.g. 2x2; empty = near-square grid sized to -cores)")
		floorplan  = fs.String("floorplan", "", "core placement on the -grid, one row,col pair per core (e.g. \"0,0;0,1;1,0;1,1\"; empty = round-robin)")
		tracePath  = fs.String("trace", "", "file to write the -kind kernel's windowed power trace into (CSV; empty = don't write)")
		tunerName  = fs.String("tuner", "", "stress-tuning mechanism: gd, ga, annealing, random, bruteforce, cmaes, halving-gd, halving-cmaes (empty = gd); for -experiment tunercmp, a comma-separated challenger list")
		maxEvals   = fs.Int("budget", 0, "proposed-evaluation budget per stress tuning run (0 = bounded by epochs only)")
		powerCap   = fs.Float64("power-cap", 0, "dynamic power cap in watts for stress tuning (0 = uncapped; capped runs report the objective/power Pareto front)")
		memoCap    = fs.Int("memo-cap", 0, "bound each run's evaluation cache to this many entries with LRU eviction (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	budget := experiments.FullBudget()
	if *quick {
		budget = experiments.QuickBudget()
	}
	if *dynInstr > 0 {
		budget.DynamicInstructions = *dynInstr
	}
	if *epochs > 0 {
		budget.CloneEpochs = *epochs
	}
	if *seed != 0 {
		budget.Seed = *seed
	}
	if *benchList != "" {
		budget.Benchmarks = strings.Split(*benchList, ",")
	}
	if *parallel > 0 {
		budget.Parallel = *parallel
	}
	if *maxEvals > 0 {
		budget.MaxEvaluations = *maxEvals
	}
	if *powerCap > 0 {
		budget.PowerCapW = *powerCap
	}
	if *memoCap > 0 {
		budget.MemoCap = *memoCap
	}
	var challengers []string
	if *tunerName != "" {
		for _, name := range strings.Split(*tunerName, ",") {
			challengers = append(challengers, strings.ToLower(strings.TrimSpace(name)))
		}
		if len(challengers) == 1 {
			budget.Tuner = challengers[0]
		} else if strings.ToLower(*experiment) != "tunercmp" {
			return fmt.Errorf("a comma-separated -tuner list is only valid with -experiment tunercmp")
		}
	}

	freqs, err := parseFreqs(*freqList)
	if err != nil {
		return err
	}
	if freqs != nil {
		*cores = len(freqs)
	}

	rows, cols, err := parseGrid(*gridDims, *cores)
	if err != nil {
		return err
	}
	var fp *multicore.Floorplan
	if *floorplan != "" {
		plan, err := multicore.ParseFloorplan(*floorplan, rows, cols)
		if err != nil {
			return fmt.Errorf("bad -floorplan: %w", err)
		}
		fp = &plan
	}

	ctx := context.Background()
	runner := &suite{out: out, csvDir: *csvDir, budget: budget, core: strings.ToLower(*coreName),
		cores: *cores, freqs: freqs, rows: rows, cols: cols, fp: fp, tuners: challengers}
	// -kind and -core are normalized like -experiment, so "Voltage-Noise-Virus"
	// or "SMALL" work the same as their lower-case spellings.
	if *kind != "" {
		return runner.runKind(ctx, strings.ToLower(*kind), *tracePath)
	}
	return runner.run(ctx, strings.ToLower(*experiment))
}

// parseGrid parses the -grid dimensions ("2x2"). An empty value picks a
// near-square grid with at least one node per core (2x2 for 4 cores, 1x2
// for 2), so the spatial kinds work without an explicit -grid.
func parseGrid(s string, cores int) (rows, cols int, err error) {
	if s == "" {
		if cores < 1 {
			cores = 1
		}
		rows = 1
		for rows*rows < cores {
			rows++
		}
		if rows*(rows-1) >= cores {
			return rows - 1, rows, nil
		}
		return rows, rows, nil
	}
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -grid %q: want RxC, e.g. 2x2", s)
	}
	rows, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err == nil {
		cols, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	}
	if err != nil || rows < 1 || cols < 1 {
		return 0, 0, fmt.Errorf("bad -grid %q: want RxC with positive dimensions, e.g. 2x2", s)
	}
	return rows, cols, nil
}

// parseFreqs parses the -freqs list ("2.0,1.2") into per-core GHz values.
func parseFreqs(list string) ([]float64, error) {
	if list == "" {
		return nil, nil
	}
	parts := strings.Split(list, ",")
	freqs := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -freqs entry %q: %w", p, err)
		}
		if !(f > 0) || math.IsInf(f, 0) { // !(f>0) also catches NaN
			return nil, fmt.Errorf("-freqs entry %q must be a positive finite clock in GHz", p)
		}
		freqs[i] = f
	}
	return freqs, nil
}

// runKind runs one stress test of the given kind and optionally dumps the
// tuned kernel's power trace (for the co-run kind: the summed chip trace)
// and, with -csv, the tuning progression series.
func (s *suite) runKind(ctx context.Context, kindName, tracePath string) error {
	kind, err := stress.KindByName(kindName)
	if err != nil {
		return err
	}
	start := time.Now()
	var (
		rep   stress.Report
		trace powersim.PowerTrace
	)
	switch kind {
	case stress.CoRunNoiseVirus:
		run, err := experiments.RunCoRunKind(ctx, s.core, s.cores, s.budget)
		if err != nil {
			return err
		}
		rep, trace = run.Report, run.Trace
		fmt.Fprintln(s.out, run.Render())
	case stress.DVFSNoiseVirus:
		run, err := experiments.RunDVFSKind(ctx, s.core, s.cores, s.freqs, s.budget)
		if err != nil {
			return err
		}
		rep, trace = run.Report, run.Trace
		fmt.Fprintln(s.out, run.Render())
	case stress.SpatialNoiseVirus, stress.HotspotMigrationVirus:
		run, err := experiments.RunSpatialKind(ctx, kind, s.core, s.cores, s.rows, s.cols, s.fp, s.budget)
		if err != nil {
			return err
		}
		rep, trace = run.Report, run.Trace
		fmt.Fprintln(s.out, run.Render())
	default:
		run, err := experiments.RunStressKind(ctx, kind, s.core, s.budget)
		if err != nil {
			return err
		}
		rep, trace = run.Report, run.Trace
		fmt.Fprintln(s.out, run.Render())
	}
	fmt.Fprintf(s.out, "[%s completed in %s]\n", kind, time.Since(start).Round(time.Millisecond))
	if err := s.writeKindCSV(kind, rep); err != nil {
		return err
	}
	if tracePath == "" {
		return nil
	}
	if err := writeCSVFile(tracePath, trace.WriteCSV); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "power trace (%d windows) written to %s\n", len(trace.Points), tracePath)
	return nil
}

// writeKindCSV dumps a -kind run's progression series into the -csv
// directory, mirroring what the figure experiments do.
func (s *suite) writeKindCSV(kind stress.Kind, rep stress.Report) error {
	if s.csvDir == "" {
		return nil
	}
	return writeCSVFile(filepath.Join(s.csvDir, string(kind)+".csv"), func(w io.Writer) error {
		return report.SeriesCSV(w, rep.ProgressionSeries(string(kind)))
	})
}

// suite executes experiments and holds shared state (Fig. 2 results feed the
// Fig. 4 epoch budget, Fig. 6 feeds Table III).
type suite struct {
	out    io.Writer
	csvDir string
	budget experiments.Budget
	core   string
	cores  int
	freqs  []float64
	// rows/cols/fp describe the spatial grid of the spatial experiment and
	// kinds (fp nil = round-robin default floorplan).
	rows, cols int
	fp         *multicore.Floorplan
	// tuners is the tunercmp challenger list from -tuner (nil = defaults).
	tuners []string

	fig2 *experiments.CloningResult
	fig4 *experiments.CloningResult
	fig5 *experiments.StressResult
	fig6 *experiments.StressResult
}

func (s *suite) run(ctx context.Context, which string) error {
	order := []string{which}
	if which == "all" {
		order = []string{"tablei", "tableii", "fig2", "fig3", "fig4", "fig5", "fig6", "tableiii", "stresscmp", "corun", "dvfs", "spatial", "summary"}
	}
	for _, exp := range order {
		start := time.Now()
		if err := s.runOne(ctx, exp); err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
		fmt.Fprintf(s.out, "[%s completed in %s]\n\n", exp, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func (s *suite) runOne(ctx context.Context, which string) error {
	switch which {
	case "tablei":
		fmt.Fprintln(s.out, experiments.TableI().Render())
	case "tableii":
		fmt.Fprintln(s.out, experiments.TableII().Render())
	case "fig2":
		res, err := experiments.RunFig2(ctx, s.budget)
		if err != nil {
			return err
		}
		s.fig2 = &res
		fmt.Fprintln(s.out, res.Render())
		return s.writeCloningCSV(res)
	case "fig3":
		res, err := experiments.RunFig3(ctx, s.budget)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, res.Render())
		return s.writeCloningCSV(res)
	case "fig4":
		var gdEpochs map[string]int
		if s.fig2 != nil {
			gdEpochs = s.fig2.EpochsPerBenchmark()
		}
		res, err := experiments.RunFig4(ctx, s.budget, gdEpochs)
		if err != nil {
			return err
		}
		s.fig4 = &res
		fmt.Fprintln(s.out, res.Render())
		return s.writeCloningCSV(res)
	case "fig5":
		res, err := experiments.RunFig5(ctx, s.budget)
		if err != nil {
			return err
		}
		s.fig5 = &res
		fmt.Fprintln(s.out, res.Render())
		return s.writeStressCSV(res)
	case "fig6":
		res, err := experiments.RunFig6(ctx, s.budget)
		if err != nil {
			return err
		}
		s.fig6 = &res
		fmt.Fprintln(s.out, res.Render())
		return s.writeStressCSV(res)
	case "tableiii":
		if s.fig6 == nil {
			res, err := experiments.RunFig6(ctx, s.budget)
			if err != nil {
				return err
			}
			s.fig6 = &res
		}
		fmt.Fprintln(s.out, experiments.TableIIIFrom(s.fig6.GD).Render())
	case "stresscmp":
		res, err := experiments.RunStressCompare(ctx, s.budget)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, res.Render())
	case "corun":
		res, err := experiments.RunCoRun(ctx, s.core, s.cores, s.budget)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, res.Render())
		if s.csvDir != "" {
			return writeCSVFile(filepath.Join(s.csvDir, "corun.csv"), func(w io.Writer) error {
				return report.SeriesCSV(w, res.Series()...)
			})
		}
	case "dvfs":
		res, err := experiments.RunDVFS(ctx, s.core, s.cores, s.freqs, s.budget)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, res.Render())
		if s.csvDir != "" {
			return writeCSVFile(filepath.Join(s.csvDir, "dvfs.csv"), func(w io.Writer) error {
				return report.SeriesCSV(w, res.Series()...)
			})
		}
	case "spatial":
		res, err := experiments.RunSpatial(ctx, s.core, s.cores, s.rows, s.cols, s.fp, s.budget)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, res.Render())
		if s.csvDir != "" {
			return writeCSVFile(filepath.Join(s.csvDir, "spatial.csv"), func(w io.Writer) error {
				return report.SeriesCSV(w, res.Series()...)
			})
		}
	case "tunercmp":
		res, err := experiments.RunTunerCmp(ctx, s.core, s.cores, s.rows, s.cols, s.tuners, s.budget)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, res.Render())
		if s.csvDir != "" {
			return writeCSVFile(filepath.Join(s.csvDir, "tunercmp.csv"), func(w io.Writer) error {
				return report.SeriesCSV(w, res.Series()...)
			})
		}
	case "summary":
		if err := s.ensureSummaryInputs(ctx); err != nil {
			return err
		}
		sum := experiments.Summary(*s.fig2, *s.fig4, *s.fig5, *s.fig6)
		fmt.Fprintln(s.out, sum.Render())
	default:
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}

// ensureSummaryInputs runs any experiment the summary still needs.
func (s *suite) ensureSummaryInputs(ctx context.Context) error {
	var err error
	if s.fig2 == nil {
		var res experiments.CloningResult
		if res, err = experiments.RunFig2(ctx, s.budget); err != nil {
			return err
		}
		s.fig2 = &res
	}
	if s.fig4 == nil {
		var res experiments.CloningResult
		if res, err = experiments.RunFig4(ctx, s.budget, s.fig2.EpochsPerBenchmark()); err != nil {
			return err
		}
		s.fig4 = &res
	}
	if s.fig5 == nil {
		var res experiments.StressResult
		if res, err = experiments.RunFig5(ctx, s.budget); err != nil {
			return err
		}
		s.fig5 = &res
	}
	if s.fig6 == nil {
		var res experiments.StressResult
		if res, err = experiments.RunFig6(ctx, s.budget); err != nil {
			return err
		}
		s.fig6 = &res
	}
	return nil
}

// writeCloningCSV dumps a cloning experiment's radar data.
func (s *suite) writeCloningCSV(res experiments.CloningResult) error {
	if s.csvDir == "" {
		return nil
	}
	t := report.RadarTable(res.Figure, metrics.CloningMetricNames(), res.AccuracyRatios(), res.EpochsPerBenchmark())
	return writeCSVFile(filepath.Join(s.csvDir, res.Figure+".csv"), t.WriteCSV)
}

// writeStressCSV dumps a stress experiment's progression series.
func (s *suite) writeStressCSV(res experiments.StressResult) error {
	if s.csvDir == "" {
		return nil
	}
	return writeCSVFile(filepath.Join(s.csvDir, res.Figure+".csv"), func(w io.Writer) error {
		return report.SeriesCSV(w, res.Series()...)
	})
}

func writeCSVFile(path string, fill func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fill(f)
}
