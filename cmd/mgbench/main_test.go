package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseGrid(t *testing.T) {
	cases := []struct {
		in         string
		cores      int
		rows, cols int
		wantErr    bool
	}{
		{"", 2, 1, 2, false},
		{"", 4, 2, 2, false},
		{"", 5, 2, 3, false},
		{"", 0, 1, 1, false},
		{"2x3", 4, 2, 3, false},
		{" 2 X 3 ", 4, 2, 3, false},
		{"2x3x4", 4, 0, 0, true},
		{"2", 4, 0, 0, true},
		{"0x3", 4, 0, 0, true},
		{"ax3", 4, 0, 0, true},
	}
	for _, c := range cases {
		rows, cols, err := parseGrid(c.in, c.cores)
		if (err != nil) != c.wantErr {
			t.Errorf("parseGrid(%q, %d) error = %v, wantErr %v", c.in, c.cores, err, c.wantErr)
			continue
		}
		if err == nil && (rows != c.rows || cols != c.cols) {
			t.Errorf("parseGrid(%q, %d) = %dx%d, want %dx%d", c.in, c.cores, rows, cols, c.rows, c.cols)
		}
	}
}

func TestParseFreqs(t *testing.T) {
	freqs, err := parseFreqs(" 2.0, 1.2 ")
	if err != nil || len(freqs) != 2 || freqs[0] != 2.0 || freqs[1] != 1.2 {
		t.Fatalf("parseFreqs = %v, %v", freqs, err)
	}
	if got, err := parseFreqs(""); got != nil || err != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
	for _, bad := range []string{"2.0,x", "0", "-1", "+Inf"} {
		if _, err := parseFreqs(bad); err == nil {
			t.Errorf("parseFreqs(%q) accepted", bad)
		}
	}
}

func TestRunStaticTables(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "tableI"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-experiment", "tableII"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "completed in") {
		t.Fatalf("table runs produced: %q", out.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-experiment", "no-such-experiment"},
		{"-kind", "no-such-kind"},
		{"-grid", "bogus"},
		{"-freqs", "bogus"},
		{"-experiment", "fig5", "-tuner", "gd,ga"}, // tuner lists are tunercmp-only
		{"-experiment", "spatial", "-floorplan", "9,9", "-grid", "2x2"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestRunKindWithCSVAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick tuning loop")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	var out bytes.Buffer
	args := []string{"-kind", "perf-virus", "-quick", "-core", "small",
		"-instructions", "2000", "-seed", "1", "-memo-cap", "64",
		"-csv", dir, "-trace", trace}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{trace, filepath.Join(dir, "perf-virus.csv")} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Errorf("%s missing or empty (%v)", f, err)
		}
	}
	if !strings.Contains(out.String(), "perf-virus") {
		t.Fatalf("kind run produced: %q", out.String())
	}
}
