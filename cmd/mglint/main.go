// Command mglint runs the repo's determinism and concurrency analyzers
// (internal/lint) over Go packages. It supports two modes:
//
//	mglint ./...                     standalone, over package patterns
//	go vet -vettool=$(which mglint)  as a vet tool (unitchecker protocol)
//
// In standalone mode package metadata and export data come from
// `go list -export -deps -json`; in vet mode they come from the .cfg file
// the go command passes. Exit status: 0 clean, 1 diagnostics reported,
// 2 operational error (bad patterns, packages that do not type-check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"micrograd/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes vet tools for a version line (-V=full) and for
	// their flag set (-flags) before handing them a config file.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Printf("%s version v1.0.0\n", progName())
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetTool(args[0])
		}
	}

	fs := flag.NewFlagSet("mglint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	spec := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return runStandalone(patterns, analyzers)
}

func progName() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// listPackage is the subset of `go list -json` output mglint needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

func runStandalone(patterns []string, analyzers []*lint.Analyzer) int {
	cmdArgs := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mglint: go list failed: %v\n", err)
		return 2
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "mglint: decoding go list output: %v\n", err)
			return 2
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "mglint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 2
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	exit := 0
	for _, p := range targets {
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		pkg, err := loadPackage(fset, p.ImportPath, files, imp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mglint: %s: %v\n", p.ImportPath, err)
			return 2
		}
		for _, d := range lint.Check(pkg, analyzers) {
			printDiag(d)
			exit = 1
		}
	}
	return exit
}

// vetConfig mirrors the JSON config the go command feeds vet tools
// (x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mglint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mglint: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// The go command expects a facts file regardless of findings; mglint
	// keeps no cross-package facts, so an empty one satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mglint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	base := exportImporter(fset, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return base.Import(path)
	})

	// The go command also routes test packages through vet tools. The
	// repo's determinism rules scope to compiled non-test code (_test.go
	// may use wall clock, exact comparisons in tolerance helpers, ...), so
	// test files are dropped; an external test package has nothing left.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}

	pkg, err := loadPackage(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mglint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	exit := 0
	for _, d := range lint.Check(pkg, lint.All()) {
		printDiag(d)
		exit = 1
	}
	return exit
}

// exportImporter builds a gc-export-data importer that resolves package
// files through lookup, with the unsafe package special-cased.
func exportImporter(fset *token.FileSet, lookup func(string) (io.ReadCloser, error)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// loadPackage parses and type-checks one package from its non-test files.
func loadPackage(fset *token.FileSet, path string, files []string, imp types.Importer) (*lint.Package, error) {
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		Path:  path,
		Fset:  fset,
		Files: astFiles,
		Types: tpkg,
		Info:  info,
	}, nil
}

func printDiag(d lint.Diagnostic) {
	pos := d.Pos
	if rel, err := filepath.Rel(".", pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	fmt.Fprintf(os.Stderr, "%s\n", lint.Diagnostic{Pos: pos, Analyzer: d.Analyzer, Message: d.Message})
}
