package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunProbeFlags covers the go-command probe handshake (-V=full, -flags)
// and the -list flag.
func TestRunProbeFlags(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", got)
	}
	if got := run([]string{"-flags"}); got != 0 {
		t.Fatalf("run(-flags) = %d, want 0", got)
	}
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) = %d, want 0", got)
	}
	if got := run([]string{"-analyzers", "nosuch", "./..."}); got != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", got)
	}
}

// TestStandaloneCleanTree runs the standalone driver over a couple of real
// repo packages, which must be lint-clean.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	if got := run([]string{"../../internal/metrics", "../../internal/report"}); got != 0 {
		t.Fatalf("mglint over clean packages = %d, want 0", got)
	}
}

// TestStandaloneBrokenFixture runs the standalone driver over the
// deliberately broken smoke fixture (its own mini-module under testdata, so
// the repo's ./... never sees it) and requires a non-zero exit.
func TestStandaloneBrokenFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	fixture, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "smoke"))
	if err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(fixture); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	if got := run([]string{"./..."}); got != 1 {
		t.Fatalf("mglint over the broken fixture = %d, want 1", got)
	}
}

// TestVetConfigMode drives runVetTool in-process with a hand-built .cfg
// (the JSON the go command passes vet tools), pointing at the broken smoke
// fixture: the facts file must be written, VetxOnly runs must stay silent,
// and the analysis run must report diagnostics.
func TestVetConfigMode(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	smokeDir, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "smoke"))
	if err != nil {
		t.Fatal(err)
	}
	list := exec.Command("go", "list", "-export", "-deps", "-json", "./...")
	list.Dir = smokeDir
	out, err := list.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	exports := map[string]string{}
	var goFiles []string
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			break
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ImportPath == "lintsmoke/internal/sim" {
			for _, f := range p.GoFiles {
				goFiles = append(goFiles, filepath.Join(p.Dir, f))
			}
		}
	}
	if len(goFiles) == 0 {
		t.Fatal("go list did not surface the fixture package")
	}

	tmp := t.TempDir()
	writeCfg := func(name string, vetxOnly bool) string {
		cfg := vetConfig{
			Compiler:    "gc",
			Dir:         smokeDir,
			ImportPath:  "lintsmoke/internal/sim",
			GoFiles:     goFiles,
			PackageFile: exports,
			VetxOnly:    vetxOnly,
			VetxOutput:  filepath.Join(tmp, name+".vetx"),
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(tmp, name+".cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if got := run([]string{writeCfg("facts", true)}); got != 0 {
		t.Fatalf("VetxOnly run = %d, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(tmp, "facts.vetx")); err != nil {
		t.Fatalf("VetxOnly run left no facts file: %v", err)
	}
	if got := run([]string{writeCfg("check", false)}); got != 1 {
		t.Fatalf("analysis run over the broken fixture = %d, want 1", got)
	}
}

// TestVetToolProtocol builds the real binary and drives it through
// `go vet -vettool=` over clean repo packages — the full unitchecker
// handshake (version probe, facts files, per-package .cfg runs).
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "mglint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mglint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "../../internal/metrics", "../../internal/multicore")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean packages failed: %v\n%s", err, out)
	}

	// The same handshake over the broken fixture must surface diagnostics.
	vet = exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = filepath.Join("..", "..", "internal", "lint", "testdata", "smoke")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool over the broken fixture passed; output:\n%s", out)
	}
	if !strings.Contains(string(out), "[maprange]") {
		t.Fatalf("go vet output lacks a maprange diagnostic:\n%s", out)
	}
}
