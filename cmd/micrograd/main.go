// Command micrograd is the MicroGrad framework CLI: it runs a workload
// cloning or stress testing job described either by a JSON configuration
// file (-config) or by command-line flags, and writes the generated kernel
// and its reports to the output directory.
//
// Examples:
//
//	micrograd -use-case cloning -benchmark mcf -core large -out out/
//	micrograd -use-case stress -stress-kind power-virus -core large -epochs 30
//	micrograd -config my-run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"micrograd/internal/config"
	"micrograd/internal/core"
	"micrograd/internal/metrics"
	"micrograd/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "micrograd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("micrograd", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "path to a JSON framework configuration (overrides other flags)")
		useCase    = fs.String("use-case", config.UseCaseCloning, "use case: cloning or stress")
		benchmark  = fs.String("benchmark", "", "reference application to clone (astar, bzip2, gcc, hmmer, libquantum, mcf, sjeng, xalancbmk)")
		simpoints  = fs.Bool("simpoints", false, "clone every phase (simpoint) of the benchmark individually")
		stressKind = fs.String("stress-kind", "perf-virus", "stress kind: perf-virus, power-virus, voltage-noise-virus or thermal-virus")
		coreName   = fs.String("core", "large", "core configuration: small or large (Table II)")
		tunerName  = fs.String("tuner", "gd", "tuning mechanism: gd, ga, random, bruteforce")
		epochs     = fs.Int("epochs", 0, "maximum tuning epochs (0 = use-case default)")
		accuracy   = fs.Float64("accuracy", 0.99, "cloning target accuracy")
		dynInstr   = fs.Int("instructions", 0, "dynamic instructions per evaluation (0 = default)")
		loopSize   = fs.Int("loop-size", 0, "static kernel size (0 = ~500)")
		seed       = fs.Int64("seed", 1, "random seed")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count of the parallel evaluation engine (1 = serial; results are identical at any count)")
		outDir     = fs.String("out", "", "directory to write the kernel and reports into (empty = don't write)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg config.Config
	var err error
	if *configPath != "" {
		cfg, err = config.Load(*configPath)
		if err != nil {
			return err
		}
	} else {
		cfg = config.Default()
		cfg.UseCase = *useCase
		cfg.Benchmark = *benchmark
		cfg.CloneSimpoints = *simpoints
		cfg.StressKind = *stressKind
		cfg.Core = *coreName
		cfg.Tuner = *tunerName
		cfg.MaxEpochs = *epochs
		cfg.TargetAccuracy = *accuracy
		cfg.DynamicInstructions = *dynInstr
		cfg.LoopSize = *loopSize
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		cfg.OutputDir = *outDir
		if err := cfg.Validate(); err != nil {
			return err
		}
	}

	fw, err := core.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "MicroGrad: %s on the %q core with tuner %q\n", cfg.UseCase, cfg.Core, cfg.Tuner)
	result, err := fw.Run(context.Background())
	if err != nil {
		return err
	}
	printOutput(out, result)

	if cfg.OutputDir != "" {
		paths, err := result.WriteArtifacts(cfg.OutputDir)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\nartifacts written:")
		for _, p := range paths {
			fmt.Fprintln(out, "  ", p)
		}
	}
	return nil
}

// printOutput renders the run result.
func printOutput(out *os.File, result *core.Output) {
	fmt.Fprintf(out, "\nrun %q finished: %d platform evaluations, %d epochs\n",
		result.Name, result.Evaluations, len(result.Progression))

	if len(result.CloneReports) > 0 {
		names := make([]string, 0, len(result.CloneReports))
		for n := range result.CloneReports {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rep := result.CloneReports[n]
			t := report.NewTable(fmt.Sprintf("clone %s (mean accuracy %.1f%%, %d epochs)", rep.Name, rep.MeanAccuracy*100, rep.Epochs),
				"metric", "target", "clone", "ratio")
			for _, m := range metrics.CloningMetricNames() {
				t.AddRow(m,
					fmt.Sprintf("%.4f", rep.Target[m]),
					fmt.Sprintf("%.4f", rep.Clone[m]),
					fmt.Sprintf("%.3f", rep.Accuracy[m]))
			}
			fmt.Fprintln(out, "\n"+t.String())
		}
	}
	if result.StressReport != nil {
		rep := result.StressReport
		fmt.Fprintf(out, "\nstress test %q: best %s = %.4f after %d epochs (%d evaluations)\n",
			rep.Kind, rep.Metric, rep.BestValue, rep.Epochs, rep.Evaluations)
		fmt.Fprintln(out, report.AsciiChart("progression", 60, 12, rep.ProgressionSeries("best")))
	}
	fmt.Fprintf(out, "\nknobs: %s\n", result.Knobs.String())
	fmt.Fprintf(out, "metrics: %s\n", result.Metrics.String())
}
