// Command mgworkload inspects the built-in reference applications (the SPEC
// INT CPU2006 stand-ins): it lists the suite, shows each benchmark's phases,
// and measures the reference metric vectors on a chosen core, which is
// useful for understanding what the cloning experiments are asked to match.
//
//	mgworkload -list
//	mgworkload -benchmark mcf -core large
//	mgworkload -core small            # measure the whole suite
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"micrograd/internal/metrics"
	"micrograd/internal/platform"
	"micrograd/internal/report"
	"micrograd/internal/sched"
	"micrograd/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mgworkload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mgworkload", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list the reference applications and exit")
		benchmark = fs.String("benchmark", "", "measure only this benchmark")
		coreName  = fs.String("core", "large", "core to measure on: small or large")
		dynInstr  = fs.Int("instructions", 20000, "dynamic instructions per measurement")
		seed      = fs.Int64("seed", 1, "trace expansion seed")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "benchmarks measured concurrently (1 = serial; results are identical at any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		t := report.NewTable("Reference applications", "name", "phases", "description")
		for _, b := range workloads.SPECInt2006() {
			t.AddRow(b.Name, fmt.Sprintf("%d", len(b.Phases)), b.Description)
		}
		fmt.Fprintln(out, t.String())
		return nil
	}

	spec, err := platform.ByName(*coreName)
	if err != nil {
		return err
	}
	opts := platform.EvalOptions{DynamicInstructions: *dynInstr, Seed: *seed}

	var suite []workloads.Benchmark
	if *benchmark != "" {
		bm, err := workloads.ByName(*benchmark)
		if err != nil {
			return err
		}
		suite = []workloads.Benchmark{bm}
	} else {
		suite = workloads.SPECInt2006()
	}

	// Measure the suite on the evaluation engine: one platform instance per
	// task (the simulator resets per run, so results match a shared-platform
	// serial sweep bit-for-bit) and rows rendered in suite order. Values
	// <= 0 mean serial, matching the other CLIs' -parallel semantics.
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	vectors, err := sched.Map(context.Background(), workers, suite,
		func(_ context.Context, _ int, bm workloads.Benchmark) (metrics.Vector, error) {
			plat, err := platform.NewSimPlatform(spec)
			if err != nil {
				return nil, err
			}
			v, err := bm.Reference(plat, opts)
			if err != nil {
				return nil, fmt.Errorf("measuring %s: %w", bm.Name, err)
			}
			return v, nil
		})
	if err != nil {
		return err
	}

	cols := append([]string{"benchmark"}, metrics.CloningMetricNames()...)
	t := report.NewTable(fmt.Sprintf("Reference metrics on the %q core (%d dynamic instructions)", *coreName, *dynInstr), cols...)
	for i, bm := range suite {
		row := []string{bm.Name}
		for _, m := range metrics.CloningMetricNames() {
			row = append(row, fmt.Sprintf("%.4f", vectors[i][m]))
		}
		t.AddRow(row...)
	}
	fmt.Fprintln(out, t.String())
	return nil
}
