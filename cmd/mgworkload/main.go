// Command mgworkload inspects the built-in reference applications (the SPEC
// INT CPU2006 stand-ins): it lists the suite, shows each benchmark's phases,
// and measures the reference metric vectors on a chosen core, which is
// useful for understanding what the cloning experiments are asked to match.
//
//	mgworkload -list
//	mgworkload -benchmark mcf -core large
//	mgworkload -core small            # measure the whole suite
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"micrograd/internal/metrics"
	"micrograd/internal/platform"
	"micrograd/internal/report"
	"micrograd/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mgworkload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mgworkload", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list the reference applications and exit")
		benchmark = fs.String("benchmark", "", "measure only this benchmark")
		coreName  = fs.String("core", "large", "core to measure on: small or large")
		dynInstr  = fs.Int("instructions", 20000, "dynamic instructions per measurement")
		seed      = fs.Int64("seed", 1, "trace expansion seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		t := report.NewTable("Reference applications", "name", "phases", "description")
		for _, b := range workloads.SPECInt2006() {
			t.AddRow(b.Name, fmt.Sprintf("%d", len(b.Phases)), b.Description)
		}
		fmt.Fprintln(out, t.String())
		return nil
	}

	spec, err := platform.ByName(*coreName)
	if err != nil {
		return err
	}
	plat, err := platform.NewSimPlatform(spec)
	if err != nil {
		return err
	}
	opts := platform.EvalOptions{DynamicInstructions: *dynInstr, Seed: *seed}

	var suite []workloads.Benchmark
	if *benchmark != "" {
		bm, err := workloads.ByName(*benchmark)
		if err != nil {
			return err
		}
		suite = []workloads.Benchmark{bm}
	} else {
		suite = workloads.SPECInt2006()
	}

	cols := append([]string{"benchmark"}, metrics.CloningMetricNames()...)
	t := report.NewTable(fmt.Sprintf("Reference metrics on the %q core (%d dynamic instructions)", *coreName, *dynInstr), cols...)
	for _, bm := range suite {
		v, err := bm.Reference(plat, opts)
		if err != nil {
			return fmt.Errorf("measuring %s: %w", bm.Name, err)
		}
		row := []string{bm.Name}
		for _, m := range metrics.CloningMetricNames() {
			row = append(row, fmt.Sprintf("%.4f", v[m]))
		}
		t.AddRow(row...)
	}
	fmt.Fprintln(out, t.String())
	return nil
}
