package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"micrograd/internal/knobs"
)

// TestRunQuickWritesReport drives the harness end to end in quick mode and
// validates the BENCH_<n>.json document it writes.
func TestRunQuickWritesReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-quick", "-parallel", "1", "-pr", "6", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.PR != 6 {
		t.Errorf("pr = %d", rep.PR)
	}
	if len(rep.Current.Throughput) != 1 || rep.Current.Throughput[0].EvalsPerSec <= 0 {
		t.Errorf("bad throughput: %+v", rep.Current.Throughput)
	}
	if rep.Current.SumTraces.NSPerCall <= 0 || rep.Current.SumTraces.Cores != 2 {
		t.Errorf("bad sum_traces: %+v", rep.Current.SumTraces)
	}
	if rep.Current.EvalMemo.Hits == 0 || rep.Current.EvalMemo.Misses == 0 {
		t.Errorf("evaluation memo never exercised: %+v", rep.Current.EvalMemo)
	}
	if rep.Current.SynthMemo.Hits == 0 || rep.Current.SynthMemo.Misses == 0 {
		t.Errorf("synthesis memo never exercised: %+v", rep.Current.SynthMemo)
	}
	if f := rep.Current.Fidelity; f.Fidelity != 0.25 || f.Seconds <= 0 || f.FullSeconds <= 0 || f.Speedup <= 0 {
		t.Errorf("bad fidelity measurement: %+v", f)
	}

	// A second run against the first as baseline embeds it and records the
	// serial-path speedup.
	second := filepath.Join(dir, "bench2.json")
	if err := run([]string{"-quick", "-parallel", "1", "-out", second, "-baseline", path}, &out); err != nil {
		t.Fatal(err)
	}
	blob, err = os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	var rep2 Report
	if err := json.Unmarshal(blob, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Baseline == nil || rep2.SpeedupEvalsPerSec <= 0 {
		t.Errorf("baseline not embedded: baseline=%v speedup=%v", rep2.Baseline, rep2.SpeedupEvalsPerSec)
	}

	// A bare Measurement is also accepted as a baseline.
	bare := filepath.Join(dir, "bare.json")
	mblob, err := json.Marshal(rep.Current)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bare, mblob, 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := loadBaseline(bare); err != nil || len(m.Throughput) == 0 {
		t.Errorf("bare measurement baseline rejected: %v %+v", err, m)
	}
}

func TestParseParallel(t *testing.T) {
	got, err := parseParallel("1, 4,8")
	if err != nil || !reflect.DeepEqual(got, []int{1, 4, 8}) {
		t.Errorf("parseParallel = %v, %v", got, err)
	}
	if _, err := parseParallel("0"); err == nil {
		t.Error("non-positive worker count should be rejected")
	}
	if _, err := parseParallel("x"); err == nil {
		t.Error("non-numeric worker count should be rejected")
	}
	def, err := parseParallel("")
	if err != nil || len(def) == 0 || def[0] != 1 {
		t.Errorf("default levels = %v, %v", def, err)
	}
	if n := runtime.GOMAXPROCS(0); n > 2 && def[len(def)-1] != n {
		t.Errorf("default levels %v should end at GOMAXPROCS %d", def, n)
	}
}

func TestSampleConfigsDistinctAndDeterministic(t *testing.T) {
	a := sampleConfigs(knobs.StressSpace(), 6, 3)
	b := sampleConfigs(knobs.StressSpace(), 6, 3)
	if len(a) != 6 {
		t.Fatalf("want 6 configs, got %d", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Errorf("config %d differs across same-seed samples", i)
		}
		if seen[a[i].Key()] {
			t.Errorf("config %d is a duplicate", i)
		}
		seen[a[i].Key()] = true
	}
}

func TestEvalsPerSecAt(t *testing.T) {
	m := Measurement{Throughput: []ThroughputPoint{{Parallel: 1, EvalsPerSec: 10}, {Parallel: 4, EvalsPerSec: 30}}}
	if v, ok := evalsPerSecAt(m, 4); !ok || v != 30 {
		t.Errorf("evalsPerSecAt(4) = %v, %v", v, ok)
	}
	if _, ok := evalsPerSecAt(m, 2); ok {
		t.Error("missing level should not be found")
	}
}
