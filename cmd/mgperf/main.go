// Command mgperf is the performance-trajectory harness behind `make perf`:
// it measures the evaluation pipeline's throughput — synthesized kernels
// simulated on the Large core, the unit of work inside every tuning epoch —
// and writes the numbers as JSON (the BENCH_<n>.json schema documented in
// ROADMAP.md).
//
// Measurements:
//
//   - evaluations/sec and instructions/sec of the stress single-core
//     workload at each -parallel level (1, 2 and GOMAXPROCS by default);
//   - the chip-trace aggregation cost (powersim.SumTracesTime) in ns/call;
//   - the spatial grid-solve cost (GridSupplyModel.NodeDroopsMV plus
//     GridThermalModel.NodeTempsC on a 2x2 grid) in ns/call — the extra
//     per-candidate work a spatial stress tuning epoch pays;
//   - the evaluation-memo and synthesis-memo hit/miss counters of a
//     repeated-configuration pass;
//   - the reduced-fidelity screening speedup (the same batch re-simulated at
//     Fidelity 0.25 with warm synthesis memos) — the per-candidate saving a
//     successive-halving screening rung banks on.
//
// A previous run's output can be embedded via -baseline, which also records
// the evaluations/sec speedup of the current build over it:
//
//	mgperf -out BENCH_6.json -baseline bench_baseline.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"micrograd/internal/evalcache"
	"micrograd/internal/knobs"
	"micrograd/internal/metrics"
	"micrograd/internal/microprobe"
	"micrograd/internal/platform"
	"micrograd/internal/powersim"
	"micrograd/internal/program"
	"micrograd/internal/sched"
	"micrograd/internal/tuner"
)

// Workload describes the measured workload so runs are comparable.
type Workload struct {
	Core                string `json:"core"`
	Space               string `json:"space"`
	DynamicInstructions int    `json:"dynamic_instructions"`
	LoopSize            int    `json:"loop_size"`
	Evaluations         int    `json:"evaluations"`
	Seed                int64  `json:"seed"`
}

// ThroughputPoint is the measured evaluation throughput at one worker count.
type ThroughputPoint struct {
	Parallel           int     `json:"parallel"`
	Seconds            float64 `json:"seconds"`
	EvalsPerSec        float64 `json:"evals_per_sec"`
	InstructionsPerSec float64 `json:"instructions_per_sec"`
}

// SumTracesCost is the chip-trace aggregation cost.
type SumTracesCost struct {
	Cores       int     `json:"cores"`
	Windows     int     `json:"windows"`
	NSPerCall   float64 `json:"ns_per_call"`
	CallsPerSec float64 `json:"calls_per_sec"`
}

// GridSolveCost is the spatial transient-solve cost: one supply droop pass
// plus one thermal pass over a rows×cols grid with two populated corner
// nodes.
type GridSolveCost struct {
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	Windows     int     `json:"windows"`
	NSPerCall   float64 `json:"ns_per_call"`
	CallsPerSec float64 `json:"calls_per_sec"`
}

// FidelityCost compares a reduced-fidelity evaluation pass against a
// full-fidelity pass over the same configurations, both with warm synthesis
// memos so only the simulation window differs.
type FidelityCost struct {
	Fidelity    float64 `json:"fidelity"`
	Seconds     float64 `json:"seconds"`
	FullSeconds float64 `json:"full_seconds"`
	// Speedup is full/reduced wall-clock — how much cheaper one screening
	// evaluation is.
	Speedup float64 `json:"speedup"`
}

// MemoCounters are cache hit/miss counters of a memoized component.
type MemoCounters struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Measurement is one complete harness run.
type Measurement struct {
	GoMaxProcs int               `json:"go_max_procs"`
	GoVersion  string            `json:"go_version"`
	Throughput []ThroughputPoint `json:"throughput"`
	SumTraces  SumTracesCost     `json:"sum_traces"`
	// GridSolve is the spatial PDN/thermal grid solve cost (zero in reports
	// from builds that predate the spatial grid).
	GridSolve GridSolveCost `json:"grid_solve"`
	// EvalMemo counts the evaluation-result memo's hits/misses over a pass
	// that revisits every configuration once (so hits == misses == evals
	// when the memo works).
	EvalMemo MemoCounters `json:"eval_memo"`
	// SynthMemo counts the kernel-synthesis memo's hits/misses over the same
	// pass (absent pre-redesign builds report zeros).
	SynthMemo MemoCounters `json:"synth_memo"`
	// Fidelity is the reduced-fidelity screening cost (zero in reports from
	// builds that predate multi-fidelity evaluation).
	Fidelity FidelityCost `json:"fidelity"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	PR       int          `json:"pr"`
	Workload Workload     `json:"workload"`
	Current  Measurement  `json:"current"`
	Baseline *Measurement `json:"baseline,omitempty"`
	// SpeedupEvalsPerSec is current/baseline evaluations-per-sec at
	// -parallel 1 (the serial hot path), when a baseline is embedded.
	SpeedupEvalsPerSec float64 `json:"speedup_evals_per_sec,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mgperf:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mgperf", flag.ContinueOnError)
	var (
		evals        = fs.Int("evals", 24, "distinct knob configurations per throughput pass")
		dynInstr     = fs.Int("instructions", 40000, "dynamic instructions per evaluation")
		loopSize     = fs.Int("loop-size", 500, "static kernel size")
		seed         = fs.Int64("seed", 1, "random seed for configuration sampling and trace expansion")
		parallelList = fs.String("parallel", "", "comma-separated worker counts to measure (default \"1,2,N\" with N=GOMAXPROCS)")
		prNum        = fs.Int("pr", 7, "PR number recorded in the report")
		outPath      = fs.String("out", "", "write the JSON report to this file (empty = stdout only)")
		basePath     = fs.String("baseline", "", "embed a previous run's report or measurement as the baseline")
		quick        = fs.Bool("quick", false, "CI smoke budget: few evaluations, short runs")
		memoCap      = fs.Int("memo-cap", 0, "bound the measured evaluation cache to this many entries with LRU eviction (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*evals = 4
		*dynInstr = 3000
		*loopSize = 150
	}

	levels, err := parseParallel(*parallelList)
	if err != nil {
		return err
	}

	wl := Workload{
		Core:                string(platform.LargeCore),
		Space:               "stress",
		DynamicInstructions: *dynInstr,
		LoopSize:            *loopSize,
		Evaluations:         *evals,
		Seed:                *seed,
	}

	m := Measurement{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}

	// Throughput: the stress single-core workload — distinct StressSpace
	// configurations synthesized and simulated with power collection, the
	// exact unit of work inside a power-virus tuning epoch.
	cfgs := sampleConfigs(knobs.StressSpace(), *evals, *seed)
	for _, workers := range levels {
		secs, err := measureThroughput(cfgs, wl, workers)
		if err != nil {
			return err
		}
		m.Throughput = append(m.Throughput, ThroughputPoint{
			Parallel:           workers,
			Seconds:            secs,
			EvalsPerSec:        float64(len(cfgs)) / secs,
			InstructionsPerSec: float64(len(cfgs)) * float64(*dynInstr) / secs,
		})
		fmt.Fprintf(out, "throughput -parallel %d: %.2f evals/sec (%.3g instrs/sec)\n",
			workers, float64(len(cfgs))/secs, float64(len(cfgs))*float64(*dynInstr)/secs)
	}

	// Chip-trace aggregation and spatial grid-solve costs share one pair of
	// simulated core traces.
	traces, windowNS, err := coRunTraces(wl)
	if err != nil {
		return err
	}
	st, err := measureSumTraces(traces, windowNS)
	if err != nil {
		return err
	}
	m.SumTraces = st
	fmt.Fprintf(out, "sum_traces (%d cores, %d windows): %.0f ns/call\n", st.Cores, st.Windows, st.NSPerCall)

	gs, err := measureGridSolve(traces, windowNS)
	if err != nil {
		return err
	}
	m.GridSolve = gs
	fmt.Fprintf(out, "grid_solve (%dx%d grid, %d windows): %.0f ns/call\n", gs.Rows, gs.Cols, gs.Windows, gs.NSPerCall)

	// Memo behaviour: evaluate the batch twice through the memoized stack;
	// the second pass must be all hits.
	em, sm, err := measureMemo(cfgs, wl, *memoCap)
	if err != nil {
		return err
	}
	m.EvalMemo, m.SynthMemo = em, sm
	fmt.Fprintf(out, "eval memo: %d hits / %d misses; synth memo: %d hits / %d misses\n",
		em.Hits, em.Misses, sm.Hits, sm.Misses)

	// Reduced-fidelity screening cost: the successive-halving rungs buy their
	// budget savings with shorter simulation windows on already-synthesized
	// kernels.
	fc, err := measureFidelity(cfgs, wl)
	if err != nil {
		return err
	}
	m.Fidelity = fc
	fmt.Fprintf(out, "fidelity %.2f screening: %.2fx cheaper than full evaluations\n", fc.Fidelity, fc.Speedup)

	rep := Report{PR: *prNum, Workload: wl, Current: m}
	if *basePath != "" {
		base, err := loadBaseline(*basePath)
		if err != nil {
			return err
		}
		rep.Baseline = base
		if cur, ok := evalsPerSecAt(m, 1); ok {
			if old, ok := evalsPerSecAt(*base, 1); ok && old > 0 {
				rep.SpeedupEvalsPerSec = cur / old
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	} else {
		out.Write(blob)
	}
	if rep.SpeedupEvalsPerSec > 0 {
		fmt.Fprintf(out, "speedup over baseline (evals/sec, -parallel 1): %.2fx\n", rep.SpeedupEvalsPerSec)
	}
	return nil
}

// parseParallel expands the -parallel list; empty means "1,2,N".
func parseParallel(s string) ([]int, error) {
	if s == "" {
		n := runtime.GOMAXPROCS(0)
		levels := []int{1}
		if n >= 2 {
			levels = append(levels, 2)
		}
		if n > 2 {
			levels = append(levels, n)
		}
		return levels, nil
	}
	var levels []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -parallel entry %q", part)
		}
		levels = append(levels, v)
	}
	return levels, nil
}

// sampleConfigs draws n distinct configurations deterministically.
func sampleConfigs(space *knobs.Space, n int, seed int64) []knobs.Config {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	cfgs := make([]knobs.Config, 0, n)
	for len(cfgs) < n {
		cfg := space.RandomConfig(rng)
		if key := cfg.Key(); !seen[key] {
			seen[key] = true
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// stressEvaluator builds the per-worker evaluation function of the stress
// workload: one EvalSession per worker around a Large-core platform, all
// sharing the returned kernel-synthesis memo, simulating with power
// collection — the exact request path tuners use.
func stressEvaluator(wl Workload) (func() (sched.EvalFunc, error), *microprobe.CachingSynthesizer) {
	syn := microprobe.NewCachingSynthesizer(microprobe.Options{LoopSize: wl.LoopSize, Seed: wl.Seed})
	opts := platform.EvalOptions{DynamicInstructions: wl.DynamicInstructions, Seed: wl.Seed, CollectPower: true}
	return func() (sched.EvalFunc, error) {
		plat, err := platform.NewSimPlatform(platform.Large())
		if err != nil {
			return nil, err
		}
		session := platform.NewEvalSession(plat, syn)
		return func(cfg knobs.Config) (metrics.Vector, error) {
			resp, err := session.Evaluate(platform.EvalRequest{Name: "mgperf", Config: cfg, Options: opts})
			return resp.Metrics, err
		}, nil
	}, syn
}

// measureThroughput times one pass over the configuration batch at the given
// worker count and returns the wall-clock seconds.
func measureThroughput(cfgs []knobs.Config, wl Workload, workers int) (float64, error) {
	newEval, _ := stressEvaluator(wl)
	if workers <= 1 {
		eval, err := newEval()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for _, cfg := range cfgs {
			if _, err := eval(cfg); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	pe, err := sched.NewParallelEvaluator(workers, newEval)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := pe.EvaluateBatch(context.Background(), cfgs); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// coRunTraces simulates two co-running cores once, returning their power
// traces and the chip aggregation window — the shared input of the
// aggregation and grid-solve measurements.
func coRunTraces(wl Workload) ([]powersim.PowerTrace, float64, error) {
	syn := microprobe.NewSynthesizer(microprobe.Options{LoopSize: wl.LoopSize, Seed: wl.Seed})
	cfg := knobs.StressSpace().MidConfig()
	prog, err := syn.Synthesize("mgperf-sum", cfg)
	if err != nil {
		return nil, 0, err
	}
	traces := make([]powersim.PowerTrace, 2)
	for i := range traces {
		plat, err := platform.NewSimPlatform(platform.Large())
		if err != nil {
			return nil, 0, err
		}
		resp, err := plat.EvaluateRequest(platform.EvalRequest{
			Programs: []*program.Program{prog},
			Options:  platform.EvalOptions{DynamicInstructions: wl.DynamicInstructions, Seed: wl.Seed + int64(i)},
			Detail:   platform.DetailTrace,
		})
		if err != nil {
			return nil, 0, err
		}
		traces[i] = resp.Trace
	}
	return traces, float64(platform.DefaultWindowCycles) / 2.0, nil
}

// measureSumTraces times the chip aggregation of the simulated core traces.
func measureSumTraces(traces []powersim.PowerTrace, windowNS float64) (SumTracesCost, error) {
	const reps = 200
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := powersim.SumTracesTime(windowNS, nil, traces...); err != nil {
			return SumTracesCost{}, err
		}
	}
	elapsed := time.Since(start)
	perCall := float64(elapsed.Nanoseconds()) / reps
	return SumTracesCost{
		Cores:       len(traces),
		Windows:     len(traces[0].Points),
		NSPerCall:   perCall,
		CallsPerSec: 1e9 / perCall,
	}, nil
}

// measureGridSolve times one spatial solve (supply droops plus thermal temps)
// on a 2x2 grid with the two core traces on opposite corners — the extra
// per-candidate cost of evaluating a chip spatially instead of lumped.
func measureGridSolve(traces []powersim.PowerTrace, windowNS float64) (GridSolveCost, error) {
	nodes := make([]powersim.PowerTrace, 4)
	for i := range nodes {
		nodes[i] = powersim.PowerTrace{WindowNS: windowNS}
	}
	var err error
	if nodes[0], err = powersim.SumTracesTime(windowNS, nil, traces[0]); err != nil {
		return GridSolveCost{}, err
	}
	if nodes[3], err = powersim.SumTracesTime(windowNS, nil, traces[len(traces)-1]); err != nil {
		return GridSolveCost{}, err
	}
	supply := powersim.DefaultGridSupplyModel(2, 2)
	thermal := powersim.DefaultGridThermalModel(2, 2)
	windows := 0
	for _, n := range nodes {
		if len(n.Points) > windows {
			windows = len(n.Points)
		}
	}
	const reps = 20
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := supply.NodeDroopsMV(nodes); err != nil {
			return GridSolveCost{}, err
		}
		if _, err := thermal.NodeTempsC(nodes); err != nil {
			return GridSolveCost{}, err
		}
	}
	elapsed := time.Since(start)
	perCall := float64(elapsed.Nanoseconds()) / reps
	return GridSolveCost{
		Rows:        2,
		Cols:        2,
		Windows:     windows,
		NSPerCall:   perCall,
		CallsPerSec: 1e9 / perCall,
	}, nil
}

// measureMemo exercises both memo layers on a bounded slice of the batch:
// two passes through a memoizing evaluator over a shared evalcache group
// (with an unbounded cache the second pass must be all evaluation-cache
// hits, and never reaches the synthesizer; memoCap > 0 bounds the cache
// with LRU eviction instead), then one pass straight through the session
// (all synthesis-memo hits). The reported eval counters are the shared
// group's — the same counters mgserve's /stats endpoint exposes.
func measureMemo(cfgs []knobs.Config, wl Workload, memoCap int) (MemoCounters, MemoCounters, error) {
	if len(cfgs) > 16 {
		cfgs = cfgs[:16]
	}
	newEval, syn := stressEvaluator(wl)
	eval, err := newEval()
	if err != nil {
		return MemoCounters{}, MemoCounters{}, err
	}
	cache, err := evalcache.New(memoCap)
	if err != nil {
		return MemoCounters{}, MemoCounters{}, err
	}
	group := evalcache.NewGroup(cache)
	memo := tuner.NewSharedMemoizingEvaluator(tuner.EvaluatorFunc(eval), group, tuner.DefaultKey)
	ctx := context.Background()
	for pass := 0; pass < 2; pass++ {
		if _, err := tuner.EvaluateAll(ctx, memo, cfgs); err != nil {
			return MemoCounters{}, MemoCounters{}, err
		}
	}
	// A direct pass (no evaluation cache in front) re-requests every kernel
	// from the synthesis memo.
	for _, cfg := range cfgs {
		if _, err := eval(cfg); err != nil {
			return MemoCounters{}, MemoCounters{}, err
		}
	}
	hits, misses := group.Stats()
	em := MemoCounters{Hits: hits, Misses: misses}
	sh, sm := syn.Stats()
	return em, MemoCounters{Hits: sh, Misses: sm}, nil
}

// measureFidelity times one full-fidelity and one reduced-fidelity pass over
// a bounded slice of the batch, both after a warm-up pass that fills the
// synthesis memo, so the difference is simulation-window cost only.
func measureFidelity(cfgs []knobs.Config, wl Workload) (FidelityCost, error) {
	if len(cfgs) > 8 {
		cfgs = cfgs[:8]
	}
	const screeningFidelity = 0.25
	syn := microprobe.NewCachingSynthesizer(microprobe.Options{LoopSize: wl.LoopSize, Seed: wl.Seed})
	plat, err := platform.NewSimPlatform(platform.Large())
	if err != nil {
		return FidelityCost{}, err
	}
	session := platform.NewEvalSession(plat, syn)
	pass := func(fidelity float64) (float64, error) {
		start := time.Now()
		for _, cfg := range cfgs {
			opts := platform.EvalOptions{DynamicInstructions: wl.DynamicInstructions, Seed: wl.Seed,
				CollectPower: true, Fidelity: fidelity}
			if _, err := session.Evaluate(platform.EvalRequest{Name: "mgperf", Config: cfg, Options: opts}); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	// Warm-up fills the synthesis memo; the timed passes then pay simulation
	// cost only.
	if _, err := pass(1); err != nil {
		return FidelityCost{}, err
	}
	full, err := pass(1)
	if err != nil {
		return FidelityCost{}, err
	}
	reduced, err := pass(screeningFidelity)
	if err != nil {
		return FidelityCost{}, err
	}
	fc := FidelityCost{Fidelity: screeningFidelity, Seconds: reduced, FullSeconds: full}
	if reduced > 0 {
		fc.Speedup = full / reduced
	}
	return fc, nil
}

// loadBaseline reads a previous report (or bare measurement) as the baseline.
func loadBaseline(path string) (*Measurement, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err == nil && len(rep.Current.Throughput) > 0 {
		return &rep.Current, nil
	}
	var m Measurement
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &m, nil
}

// evalsPerSecAt returns the measured evaluations/sec at one worker count.
func evalsPerSecAt(m Measurement, parallel int) (float64, bool) {
	for _, p := range m.Throughput {
		if p.Parallel == parallel {
			return p.EvalsPerSec, true
		}
	}
	return 0, false
}
