package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-memo-cap", "-1"},
		{"-cache-dir", file},
		{"-addr", "999.999.999.999:0"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// syncWriter lets the daemon goroutine write output while the test reads it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestRunServesAndShutsDownOnSignal(t *testing.T) {
	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-memo-cap", "128"}, &out)
	}()

	var base string
	for i := 0; i < 100; i++ {
		if _, rest, ok := strings.Cut(out.String(), "listening on "); ok {
			base = strings.TrimSpace(strings.SplitN(rest, "\n", 2)[0])
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never reported a listen address (output %q)", out.String())
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	// run installed a handler for SIGTERM, so signalling our own process
	// exercises the graceful-shutdown path without killing the test.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("shutdown not reported (output %q)", out.String())
	}
}
