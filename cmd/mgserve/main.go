// Command mgserve runs the tuning daemon: an HTTP/JSON job queue that
// executes stress, cloning, and tuner-comparison experiments over ONE shared
// content-addressed evaluation cache and one shared program synthesizer, so
// overlapping candidate sets across jobs — resubmissions, parameter sweeps,
// concurrent clients — hit instead of re-simulating.
//
//	mgserve -addr 127.0.0.1:8080                 # in-memory unbounded cache
//	mgserve -addr 127.0.0.1:8080 -memo-cap 4096  # bounded LRU
//	mgserve -cache-dir /var/tmp/mgcache          # disk-backed, survives restarts
//
//	curl -s localhost:8080/jobs -d '{"kind":"perf-virus","quick":true,"core":"small"}'
//	curl -s localhost:8080/jobs/job-1/stream     # NDJSON progression rows
//	curl -s localhost:8080/jobs/job-1/result     # rendered report + rows
//	curl -s -X POST localhost:8080/jobs/job-1/cancel
//	curl -s localhost:8080/stats                 # shared-cache hit/miss counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"micrograd/internal/evalcache"
	"micrograd/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mgserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mgserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:0", "listen address (port 0 = pick a free port; the chosen address is printed)")
		workers  = fs.Int("workers", 2, "number of jobs run concurrently")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "evaluation fan-out cap per job (each job's requested parallelism is clamped to this)")
		memoCap  = fs.Int("memo-cap", 0, "bound the shared evaluation cache to this many entries with LRU eviction (0 = unbounded)")
		cacheDir = fs.String("cache-dir", "", "back the shared evaluation cache with this directory so it survives restarts (overrides -memo-cap)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		cache evalcache.Cache
		err   error
	)
	if *cacheDir != "" {
		cache, err = evalcache.NewDisk(*cacheDir)
	} else {
		cache, err = evalcache.New(*memoCap)
	}
	if err != nil {
		return err
	}

	s := serve.New(serve.Config{
		Cache:    cache,
		Workers:  *workers,
		Parallel: *parallel,
		Now:      time.Now,
	})
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mgserve listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(out, "mgserve: %s, shutting down\n", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}

	// Stop accepting requests (give streamers a grace period), then cancel
	// every job and drain the queue.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		_ = httpSrv.Close()
	}
	return nil
}
