// Package micrograd is the public facade of MicroGrad-Go, a from-scratch Go
// reproduction of "MicroGrad: A Centralized Framework for Workload Cloning
// and Stress Testing" (ISPASS 2021).
//
// The package re-exports the framework's user-facing API from the internal
// packages so that applications can depend on a single import:
//
//   - configure and run the framework end to end (NewFramework / RunConfig),
//   - clone a reference application's behaviour into a synthetic kernel
//     (CloneBenchmark, Clone),
//   - generate performance and power viruses (StressTest),
//   - evaluate arbitrary knob configurations on the built-in Gem5/McPAT-like
//     simulation platforms (NewPlatform, Synthesize), and
//   - reproduce the paper's tables and figures (the Experiments... helpers).
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package micrograd

import (
	"context"

	"micrograd/internal/cloning"
	"micrograd/internal/config"
	"micrograd/internal/core"
	"micrograd/internal/experiments"
	"micrograd/internal/knobs"
	"micrograd/internal/metrics"
	"micrograd/internal/microprobe"
	"micrograd/internal/platform"
	"micrograd/internal/program"
	"micrograd/internal/stress"
	"micrograd/internal/tuner"
	"micrograd/internal/workloads"
)

// Re-exported types. These aliases are the supported public surface; the
// internal packages they point to carry the full documentation.
type (
	// Config is the framework input configuration (use case, core, tuner,
	// budgets, target application or stress goal).
	Config = config.Config
	// Framework is a configured MicroGrad instance.
	Framework = core.Framework
	// Output is the framework output bundle (kernel, knobs, metrics,
	// progression).
	Output = core.Output

	// CloneOptions and CloneReport parameterize and describe workload
	// cloning runs.
	CloneOptions = cloning.Options
	CloneReport  = cloning.Report
	// StressOptions and StressReport parameterize and describe stress runs.
	StressOptions = stress.Options
	StressReport  = stress.Report
	// StressKind selects the stress goal (PerfVirus, PowerVirus).
	StressKind = stress.Kind

	// Benchmark is a reference application (SPEC-INT-like synthetic model).
	Benchmark = workloads.Benchmark
	// MetricVector is a named set of measured metrics.
	MetricVector = metrics.Vector
	// KnobSpace and KnobConfig are the abstract workload model.
	KnobSpace  = knobs.Space
	KnobConfig = knobs.Config
	// Program is a generated synthetic test case.
	Program = program.Program

	// Platform is the evaluation boundary; SimPlatform is the built-in
	// Gem5+McPAT substitute; EvalOptions controls one evaluation.
	Platform    = platform.Platform
	SimPlatform = platform.SimPlatform
	EvalOptions = platform.EvalOptions
	// EvalRequest/EvalResponse are the redesigned evaluation API: one request
	// in, one response out, on any platform. RequestEvaluator is the
	// platform-side interface and EvalSession the reusable front door that
	// also synthesizes (and memoizes) kernels from knob configurations.
	EvalRequest      = platform.EvalRequest
	EvalResponse     = platform.EvalResponse
	EvalDetail       = platform.EvalDetail
	RequestEvaluator = platform.RequestEvaluator
	EvalSession      = platform.EvalSession
	// KernelSynthesizer is the memoizing kernel synthesizer EvalSessions use.
	KernelSynthesizer = microprobe.CachingSynthesizer
	// CoreSpec describes a core configuration (Table II).
	CoreSpec = platform.CoreSpec

	// Tuner is a tuning mechanism; TunerResult its outcome.
	Tuner       = tuner.Tuner
	TunerResult = tuner.Result

	// ExperimentBudget scales the paper-reproduction experiment runners.
	ExperimentBudget = experiments.Budget
)

// Stress kinds.
const (
	PerfVirus  = stress.PerfVirus
	PowerVirus = stress.PowerVirus
)

// Evaluation detail levels.
const (
	DetailMetrics = platform.DetailMetrics
	DetailTrace   = platform.DetailTrace
	DetailResult  = platform.DetailResult
)

// DefaultConfig returns the framework configuration defaults.
func DefaultConfig() Config { return config.Default() }

// LoadConfig reads a JSON framework configuration from disk.
func LoadConfig(path string) (Config, error) { return config.Load(path) }

// NewFramework builds a framework instance from a configuration.
func NewFramework(cfg Config) (*Framework, error) { return core.New(cfg) }

// RunConfig builds a framework from cfg and runs its use case.
func RunConfig(ctx context.Context, cfg Config) (*Output, error) {
	fw, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return fw.Run(ctx)
}

// Benchmarks returns the built-in reference application suite (the SPEC INT
// CPU2006 stand-ins).
func Benchmarks() []Benchmark { return workloads.SPECInt2006() }

// BenchmarkByName returns one reference application by name.
func BenchmarkByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// Cores returns the built-in core configurations (Table II).
func Cores() []CoreSpec { return platform.Cores() }

// CoreByName returns the named core configuration ("small", "large").
func CoreByName(name string) (CoreSpec, error) { return platform.ByName(name) }

// NewPlatform instantiates the simulation platform for the named core.
func NewPlatform(coreName string) (*SimPlatform, error) {
	spec, err := platform.ByName(coreName)
	if err != nil {
		return nil, err
	}
	return platform.NewSimPlatform(spec)
}

// DefaultKnobSpace returns the full cloning knob space (Listing 1).
func DefaultKnobSpace() *KnobSpace { return knobs.DefaultSpace() }

// StressKnobSpace returns the knob space used for power-virus generation.
func StressKnobSpace() *KnobSpace { return knobs.StressSpace() }

// Synthesize generates a synthetic test case for a knob configuration using
// the standard pass pipeline with the given static loop size (0 = ~500).
func Synthesize(name string, cfg KnobConfig, loopSize int, seed int64) (*Program, error) {
	syn := microprobe.NewSynthesizer(microprobe.Options{LoopSize: loopSize, Seed: seed})
	return syn.Synthesize(name, cfg)
}

// NewEvalSession binds a platform to a fresh memoizing kernel synthesizer
// and returns the reusable evaluation session that serves EvalRequests.
func NewEvalSession(plat RequestEvaluator, loopSize int, seed int64) *EvalSession {
	syn := microprobe.NewCachingSynthesizer(microprobe.Options{LoopSize: loopSize, Seed: seed})
	return platform.NewEvalSession(plat, syn)
}

// Clone tunes a synthetic workload to match an explicitly provided metric
// vector.
func Clone(ctx context.Context, name string, target MetricVector, opts CloneOptions) (CloneReport, error) {
	return cloning.Clone(ctx, name, target, opts)
}

// CloneBenchmark measures a reference application on the options' platform
// and clones it.
func CloneBenchmark(ctx context.Context, bm Benchmark, opts CloneOptions) (CloneReport, error) {
	return cloning.CloneBenchmark(ctx, bm, opts)
}

// StressTest generates a stress test of the given kind (PerfVirus,
// PowerVirus, or a custom metric via options).
func StressTest(ctx context.Context, kind StressKind, opts StressOptions) (StressReport, error) {
	return stress.Run(ctx, kind, opts)
}

// GradientDescentTuner returns the paper's gradient-descent tuning mechanism
// with default parameters.
func GradientDescentTuner() Tuner { return tuner.NewGradientDescent(tuner.GDParams{}) }

// GeneticAlgorithmTuner returns the GA baseline with the paper's Table I
// parameters.
func GeneticAlgorithmTuner() Tuner { return tuner.NewGeneticAlgorithm(tuner.GAParams{}) }

// CloningMetricNames returns the nine metrics cloning targets by default.
func CloningMetricNames() []string { return metrics.CloningMetricNames() }
