// Workload cloning example: clone several SPEC-like reference applications
// on both core configurations and write the clone kernels to disk.
//
// This mirrors the paper's primary use case (Figs. 2-3): for each selected
// benchmark the reference metric vector is measured, a clone is tuned with
// gradient descent, and the resulting kernel is emitted both as RISC-V
// assembly and as a portable C kernel, ready to be assembled/compiled and
// run on native hardware or a full simulator.
//
// Run with:
//
//	go run ./examples/cloning [output-dir]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"micrograd"
)

func main() {
	outDir := "clones"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	benchmarks := []string{"bzip2", "mcf", "sjeng"}
	cores := []string{"small", "large"}

	for _, coreName := range cores {
		plat, err := micrograd.NewPlatform(coreName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== core %q ===\n", coreName)
		for _, name := range benchmarks {
			bench, err := micrograd.BenchmarkByName(name)
			if err != nil {
				log.Fatal(err)
			}
			report, err := micrograd.CloneBenchmark(context.Background(), bench, micrograd.CloneOptions{
				Platform:    plat,
				EvalOptions: micrograd.EvalOptions{DynamicInstructions: 15000, Seed: 1},
				MaxEpochs:   25,
				Seed:        7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s accuracy %.1f%%  epochs %-3d evaluations %d\n",
				name, report.MeanAccuracy*100, report.Epochs, report.Evaluations)

			// Emit the clone artifacts.
			base := filepath.Join(outDir, fmt.Sprintf("%s-%s", name, coreName))
			asm, err := os.Create(base + ".S")
			if err != nil {
				log.Fatal(err)
			}
			if err := report.Program.EmitAssembly(asm); err != nil {
				log.Fatal(err)
			}
			asm.Close()
			ck, err := os.Create(base + ".c")
			if err != nil {
				log.Fatal(err)
			}
			if err := report.Program.EmitC(ck); err != nil {
				log.Fatal(err)
			}
			ck.Close()
		}
	}
	fmt.Printf("\nclone kernels written to %s/ (<benchmark>-<core>.S and .c)\n", outDir)
}
