// Quickstart: clone one reference application in a few seconds.
//
// This example measures the metric signature of the built-in "hmmer"
// reference workload on the paper's Large core, asks MicroGrad to generate a
// synthetic clone that matches it, and prints the per-metric accuracy — the
// data behind one radar of the paper's Fig. 2 — together with the clone's
// knob settings.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"micrograd"
)

func main() {
	// 1. An evaluation platform: the Gem5+McPAT-like simulator configured as
	// the paper's Large core (Table II).
	plat, err := micrograd.NewPlatform("large")
	if err != nil {
		log.Fatal(err)
	}

	// 2. A reference application to clone. The suite models the 8 SPEC INT
	// CPU2006 benchmarks the paper uses.
	bench, err := micrograd.BenchmarkByName("hmmer")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Clone it. Budgets here are deliberately small so the example runs
	// in seconds; cmd/mgbench runs the full-size experiments.
	report, err := micrograd.CloneBenchmark(context.Background(), bench, micrograd.CloneOptions{
		Platform:    plat,
		EvalOptions: micrograd.EvalOptions{DynamicInstructions: 20000, Seed: 1},
		MaxEpochs:   30,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cloned %q in %d epochs (%d simulator evaluations)\n",
		report.Name, report.Epochs, report.Evaluations)
	fmt.Printf("mean accuracy: %.1f%%\n\n", report.MeanAccuracy*100)
	fmt.Printf("%-24s %10s %10s %8s\n", "metric", "reference", "clone", "ratio")
	for _, m := range micrograd.CloningMetricNames() {
		fmt.Printf("%-24s %10.4f %10.4f %8.3f\n", m, report.Target[m], report.Clone[m], report.Accuracy[m])
	}

	fmt.Printf("\nclone knob configuration:\n  %s\n", report.Config.String())
	fmt.Println("\nemit the clone kernel with report.Program.EmitAssembly(w) or report.Program.EmitC(w)")
	fmt.Printf("static size: %d instructions, data footprint: %d bytes\n",
		report.Program.StaticCount(), report.Program.FootprintBytes())
}
