// Bottleneck-analysis example: the "future use case" the paper sketches in
// its conclusion — sweep one workload-generation knob over its range and
// observe how a processor metric responds, revealing which resource
// bottlenecks the core.
//
// Here the memory footprint knob (MEM_SIZE) is swept on both cores while the
// rest of the configuration is held fixed, showing where each core's cache
// hierarchy stops keeping up (IPC and L1D hit rate versus working-set size).
//
// Run with:
//
//	go run ./examples/bottleneck
package main

import (
	"fmt"
	"log"

	"micrograd"
)

func main() {
	space := micrograd.DefaultKnobSpace()
	knobIdx, ok := space.IndexOf("MEM_SIZE")
	if !ok {
		log.Fatal("MEM_SIZE knob not found")
	}
	memDef := space.Def(knobIdx)

	// A memory-heavy base configuration: plenty of loads and stores, modest
	// stride, no temporal re-use, so the footprint knob is the bottleneck
	// under study.
	base, err := space.ConfigFromValues(map[string]float64{
		"ADD": 3, "MUL": 1, "FADDD": 1, "FMULD": 1, "BEQ": 2, "BNE": 2,
		"LD": 8, "LW": 6, "SD": 4, "SW": 3,
		"REG_DIST": 8, "MEM_STRIDE": 32, "MEM_TEMP1": 1, "MEM_TEMP2": 1, "B_PATTERN": 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, coreName := range []string{"small", "large"} {
		plat, err := micrograd.NewPlatform(coreName)
		if err != nil {
			log.Fatal(err)
		}
		// One reusable session per core sweep: kernels are synthesized (and
		// memoized) from the configuration inside the request.
		session := micrograd.NewEvalSession(plat, 300, 1)
		fmt.Printf("=== %s core: IPC and cache behaviour vs working-set size ===\n", coreName)
		fmt.Printf("%10s %8s %10s %10s %10s\n", "MEM_SIZE", "ipc", "l1d_hit", "l2_hit", "verdict")
		for i := 0; i < memDef.NumValues(); i++ {
			cfg := base.WithIndex(knobIdx, i)
			resp, err := session.Evaluate(micrograd.EvalRequest{
				Name:    "bottleneck",
				Config:  cfg,
				Options: micrograd.EvalOptions{DynamicInstructions: 20000, Seed: 1},
			})
			if err != nil {
				log.Fatal(err)
			}
			v := resp.Metrics
			verdict := "cache resident"
			switch {
			case v["l2_hit_rate"] < 0.6 && v["l1d_hit_rate"] < 0.8:
				verdict = "memory bound"
			case v["l1d_hit_rate"] < 0.8:
				verdict = "L2 bound"
			case v["l1d_hit_rate"] < 0.95:
				verdict = "L1 pressure"
			}
			fmt.Printf("%7.0fKiB %8.3f %10.3f %10.3f %10s\n",
				memDef.Values[i], v["ipc"], v["l1d_hit_rate"], v["l2_hit_rate"], verdict)
		}
		fmt.Println()
	}
	fmt.Println("The knee of each curve marks the capacity bottleneck of the corresponding cache level.")
}
