// Stress-testing example: generate a performance virus (worst-case IPC) and
// a power virus (worst-case dynamic power) for the Large core, print their
// tuning progressions and the power virus' instruction distribution — the
// data behind the paper's Figs. 5-6 and Table III.
//
// Run with:
//
//	go run ./examples/stresstest
package main

import (
	"context"
	"fmt"
	"log"

	"micrograd"
)

func main() {
	ctx := context.Background()

	// Performance virus: minimize IPC by tuning the instruction mix.
	perfPlat, err := micrograd.NewPlatform("large")
	if err != nil {
		log.Fatal(err)
	}
	perf, err := micrograd.StressTest(ctx, micrograd.PerfVirus, micrograd.StressOptions{
		Platform:    perfPlat,
		EvalOptions: micrograd.EvalOptions{DynamicInstructions: 20000, Seed: 1},
		MaxEpochs:   30,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("performance virus: worst-case IPC %.3f after %d epochs (%d evaluations)\n",
		perf.BestValue, perf.Epochs, perf.Evaluations)
	fmt.Println("  epoch progression (best-so-far IPC):")
	for _, p := range perf.Progression {
		fmt.Printf("    epoch %2d: %.3f\n", p.Epoch, p.BestValue)
	}

	// Power virus: maximize dynamic power; the knob space additionally
	// includes the register dependency distance.
	powerPlat, err := micrograd.NewPlatform("large")
	if err != nil {
		log.Fatal(err)
	}
	power, err := micrograd.StressTest(ctx, micrograd.PowerVirus, micrograd.StressOptions{
		Platform:    powerPlat,
		EvalOptions: micrograd.EvalOptions{DynamicInstructions: 20000, Seed: 1},
		MaxEpochs:   30,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npower virus: worst-case dynamic power %.2f W after %d epochs (%d evaluations)\n",
		power.BestValue, power.Epochs, power.Evaluations)
	fmt.Printf("register dependency distance chosen: %d (paper: driven to the maximum)\n", power.RegDist)
	fmt.Println("instruction distribution of the power virus (paper Table III):")
	fmt.Printf("  integer %.1f%%  float %.1f%%  branch %.1f%%  load %.1f%%  store %.1f%%\n",
		power.BestMetrics["frac_integer"]*100,
		power.BestMetrics["frac_float"]*100,
		power.BestMetrics["frac_branch"]*100,
		power.BestMetrics["frac_load"]*100,
		power.BestMetrics["frac_store"]*100)
	fmt.Printf("\nstress kernel knobs:\n  %s\n", power.Config.String())
}
